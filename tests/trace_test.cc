// The trace recorder: Chrome-trace JSON that actually parses, events
// carrying every key the format requires (name/cat/ph/ts/pid/tid),
// B/E spans pairing LIFO per thread with matching names, per-thread
// timestamps that never run backwards, a bounded buffer that counts
// drops instead of growing or failing silently, and race-free recording
// from concurrent threads (the TSan target).

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "json_lite.h"

namespace fewstate {
namespace {

json_lite::Value ParsedTrace(const TraceRecorder& recorder) {
  json_lite::Value root;
  const std::string json = recorder.ToJson();
  EXPECT_TRUE(json_lite::Parse(json, &root)) << json;
  return root;
}

// Walks the parsed traceEvents and asserts span integrity: every
// non-metadata event has the required keys, "B"/"E" pair LIFO per tid
// with matching names, and per-tid timestamps are non-decreasing.
void ExpectWellFormedSpans(const json_lite::Value& root) {
  const json_lite::Value* events = root.Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  std::map<int64_t, std::vector<std::string>> open;  // tid -> span stack
  std::map<int64_t, double> last_ts;
  for (const json_lite::Value& e : events->array) {
    ASSERT_TRUE(e.is_object());
    ASSERT_NE(e.Get("name"), nullptr);
    ASSERT_NE(e.Get("ph"), nullptr);
    ASSERT_NE(e.Get("ts"), nullptr);
    ASSERT_NE(e.Get("pid"), nullptr);
    ASSERT_NE(e.Get("tid"), nullptr);
    const std::string& ph = e.Get("ph")->string_value;
    const int64_t tid = static_cast<int64_t>(e.Get("tid")->number);
    if (ph == "M") continue;  // metadata carries ts 0
    ASSERT_NE(e.Get("cat"), nullptr);
    const double ts = e.Get("ts")->number;
    if (last_ts.count(tid) != 0) {
      ASSERT_GE(ts, last_ts[tid]) << "time ran backwards on tid " << tid;
    }
    last_ts[tid] = ts;
    const std::string& name = e.Get("name")->string_value;
    if (ph == "B") {
      open[tid].push_back(name);
    } else if (ph == "E") {
      ASSERT_FALSE(open[tid].empty()) << "E without open span: " << name;
      ASSERT_EQ(open[tid].back(), name) << "spans closed out of order";
      open[tid].pop_back();
    } else {
      ASSERT_EQ(ph, "i") << "unexpected phase " << ph;
      ASSERT_NE(e.Get("s"), nullptr);
      ASSERT_EQ(e.Get("s")->string_value, "t");
    }
  }
  for (const auto& entry : open) {
    EXPECT_TRUE(entry.second.empty())
        << "unclosed span on tid " << entry.first << ": "
        << entry.second.back();
  }
}

TEST(Trace, EmptyRecorderEmitsValidJson) {
  TraceRecorder recorder;
  const json_lite::Value root = ParsedTrace(recorder);
  ASSERT_TRUE(root.is_object());
  const json_lite::Value* events = root.Get("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_TRUE(events->array.empty());
  ASSERT_NE(root.Get("otherData"), nullptr);
  EXPECT_EQ(root.Get("otherData")->Get("dropped_events")->number, 0.0);
}

TEST(Trace, SpansInstantsAndMetadataAreWellFormed) {
  TraceRecorder recorder;
  recorder.SetCurrentThreadName("main-lane");
  recorder.Begin("outer", "engine");
  recorder.Begin("inner \"quoted\"", "ingest");
  recorder.Instant("tick", "policy");
  recorder.Instant("tick_with_arg", "policy", 12345);
  recorder.End("inner \"quoted\"", "ingest");
  recorder.End("outer", "engine");

  const json_lite::Value root = ParsedTrace(recorder);
  ExpectWellFormedSpans(root);
  const json_lite::Value* events = root.Get("traceEvents");
  ASSERT_EQ(events->array.size(), 7u);

  const json_lite::Value& meta = events->array[0];
  EXPECT_EQ(meta.Get("ph")->string_value, "M");
  EXPECT_EQ(meta.Get("name")->string_value, "thread_name");
  EXPECT_EQ(meta.Get("args")->Get("name")->string_value, "main-lane");

  // The escaped-name span round-trips through JSON intact.
  EXPECT_EQ(events->array[2].Get("name")->string_value, "inner \"quoted\"");

  const json_lite::Value& with_arg = events->array[4];
  EXPECT_EQ(with_arg.Get("ph")->string_value, "i");
  ASSERT_NE(with_arg.Get("args"), nullptr);
  EXPECT_EQ(with_arg.Get("args")->Get("value")->number, 12345.0);

  EXPECT_EQ(recorder.event_count(), 7u);
  EXPECT_EQ(recorder.dropped_events(), 0u);
}

TEST(Trace, TraceSpanPairsOnEveryExitPath) {
  TraceRecorder recorder;
  {
    TraceSpan outer(&recorder, "outer", "test");
    { TraceSpan inner(&recorder, "inner", "test"); }
  }
  // Null recorder: all no-ops, nothing recorded anywhere.
  { TraceSpan noop(nullptr, "ghost", "test"); }
  ExpectWellFormedSpans(ParsedTrace(recorder));
  EXPECT_EQ(recorder.event_count(), 4u);
}

TEST(Trace, BoundedBufferDropsAndCounts) {
  TraceRecorder recorder(/*max_events=*/4);
  for (int i = 0; i < 10; ++i) recorder.Instant("tick", "test");
  EXPECT_EQ(recorder.event_count(), 4u);
  EXPECT_EQ(recorder.dropped_events(), 6u);
  const json_lite::Value root = ParsedTrace(recorder);
  EXPECT_EQ(root.Get("traceEvents")->array.size(), 4u);
  EXPECT_EQ(root.Get("otherData")->Get("dropped_events")->number, 6.0);
}

TEST(Trace, WriteJsonProducesParsableFile) {
  TraceRecorder recorder;
  recorder.Begin("span", "test");
  recorder.End("span", "test");
  const std::string path = testing::TempDir() + "/fewstate_trace_test.json";
  ASSERT_TRUE(recorder.WriteJson(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  json_lite::Value root;
  EXPECT_TRUE(json_lite::Parse(content, &root)) << content;
  EXPECT_FALSE(recorder.WriteJson("/nonexistent-dir/trace.json"));
}

// TSan target: concurrent recorders interleave under the buffer mutex;
// per-thread span pairing must survive arbitrary interleavings, and
// distinct threads must land on distinct tids.
TEST(TraceConcurrency, ConcurrentSpansStayPairedPerThread) {
  TraceRecorder recorder;
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      recorder.SetCurrentThreadName("worker-" + std::to_string(t));
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan outer(&recorder, "outer", "test");
        TraceSpan inner(&recorder, "inner", "test");
        if (i % 100 == 0) recorder.Instant("mark", "test");
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const json_lite::Value root = ParsedTrace(recorder);
  ExpectWellFormedSpans(root);
  // All threads' events are present: per thread, one metadata event plus
  // 4 span events per iteration plus the instants.
  const size_t expected = static_cast<size_t>(kThreads) *
                          (1 + 4 * kSpansPerThread + kSpansPerThread / 100);
  EXPECT_EQ(root.Get("traceEvents")->array.size(), expected);
}

}  // namespace
}  // namespace fewstate
