// The view query layer: TopK/HeavyHitters over SnapshotViews must be
// exactly self-consistent with the view's own point estimates (same
// candidates, same scores, deterministic order), candidate enumeration
// must cover the true elephants, and AcquireAll must return views cut at
// one per-shard ordinal set — during the run (retrying across checkpoint
// publications) and exactly at quiescence.

#include "shard/view_query.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "baselines/count_min.h"
#include "baselines/space_saving.h"
#include "recover/checkpoint_policy.h"
#include "shard/sharded_engine.h"
#include "shard/sketch_factory.h"
#include "stream/generators.h"

namespace fewstate {
namespace {

constexpr uint64_t kUniverse = 300;
constexpr uint64_t kLength = 60000;
constexpr uint64_t kSeed = 17;
constexpr size_t kShards = 2;
constexpr uint64_t kEvery = 2000;

NvmSpec CkptSpec() {
  NvmSpec spec;
  spec.config.num_cells = 1 << 12;
  spec.config.endurance = 1 << 20;
  return spec;
}

ShardedEngineOptions ServingOptions() {
  ShardedEngineOptions options;
  options.shards = kShards;
  options.batch_items = 512;
  options.checkpoint_policy = CheckpointPolicy::EveryItems(
      kEvery, CheckpointPolicy::Snapshot::kFull);
  options.checkpoint_nvm = CkptSpec();
  options.serve_snapshots = true;
  return options;
}

SketchFactory SpaceSavingFactory() {
  return SketchFactory::Of<SpaceSaving>("space_saving", size_t{48});
}

SketchFactory CountMinFactory() {
  return SketchFactory::Of<CountMin>("count_min", size_t{4}, size_t{128},
                                     uint64_t{21}, false);
}

// Brute force with the query layer's own comparator: score every item in
// the universe against the view, keep positives above threshold, sort by
// (estimate desc, item asc).
std::vector<HeavyHitter> BruteForce(const SnapshotView& view,
                                    double threshold) {
  std::vector<HeavyHitter> all;
  for (Item item = 0; item < kUniverse; ++item) {
    const double est = view.EstimateFrequency(item);
    if (est > 0.0 && est >= threshold) all.push_back(HeavyHitter{item, est});
  }
  std::sort(all.begin(), all.end(),
            [](const HeavyHitter& a, const HeavyHitter& b) {
              if (a.estimate != b.estimate) return a.estimate > b.estimate;
              return a.item < b.item;
            });
  return all;
}

TEST(ViewQuery, AppendCandidatesEnumeratesTrackedItems) {
  SpaceSaving sketch(16);
  for (Item item = 0; item < 10; ++item) {
    for (int rep = 0; rep <= static_cast<int>(item); ++rep) {
      sketch.Update(item);
    }
  }
  std::vector<Item> candidates;
  sketch.AppendCandidates(&candidates);
  ASSERT_EQ(candidates.size(), 10u);
  std::sort(candidates.begin(), candidates.end());
  for (Item item = 0; item < 10; ++item) {
    EXPECT_EQ(candidates[static_cast<size_t>(item)], item);
  }
}

// With a scan universe, TopK is definitionally brute force over the
// universe — the result must match it exactly, order and scores.
TEST(ViewQuery, ScanUniverseTopKMatchesBruteForce) {
  ShardedEngine engine(ServingOptions());
  ASSERT_TRUE(engine.AddSketch(CountMinFactory()).ok());
  const ServingHandle handle = engine.Serving("count_min");
  engine.Run(ZipfStream(kUniverse, 1.3, kLength, kSeed));

  const SnapshotView view = handle.Acquire();
  ASSERT_TRUE(view.complete());
  const std::vector<HeavyHitter> brute = BruteForce(view, 0.0);
  for (const size_t k : {size_t{1}, size_t{10}, size_t{1000}}) {
    std::vector<HeavyHitter> expected = brute;
    if (expected.size() > k) expected.resize(k);
    EXPECT_EQ(TopK(view, k, kUniverse), expected) << "k=" << k;
  }
  // No candidates at all — hash buckets track no identities and the
  // caller gave no universe: empty, not a guess.
  EXPECT_TRUE(TopK(view, 10).empty());
}

// Candidate-enumerating shards: every returned hitter scores exactly as
// the view scores it, the order is deterministic, and the true heavy
// hitters of the stream are present — identity partitioning means an item
// globally heavy is heavy on its one home shard, so the union of per-shard
// candidate sets cannot miss it.
TEST(ViewQuery, SpaceSavingTopKIsSelfConsistentAndFindsElephants) {
  const Stream stream = ZipfStream(kUniverse, 1.3, kLength, kSeed);
  ShardedEngine engine(ServingOptions());
  ASSERT_TRUE(engine.AddSketch(SpaceSavingFactory()).ok());
  const ServingHandle handle = engine.Serving("space_saving");
  engine.Run(stream);

  const SnapshotView view = handle.Acquire();
  ASSERT_TRUE(view.complete());
  const std::vector<HeavyHitter> top = TopK(view, 10);
  ASSERT_EQ(top.size(), 10u);
  for (size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(top[i].estimate, view.EstimateFrequency(top[i].item));
    if (i > 0) {
      EXPECT_TRUE(top[i - 1].estimate > top[i].estimate ||
                  (top[i - 1].estimate == top[i].estimate &&
                   top[i - 1].item < top[i].item));
    }
  }

  // True top-3 of the materialized stream must be among the reported 10:
  // the view covers all but at most one checkpoint interval + batch per
  // shard, and SpaceSaving overestimates, so a dominant item cannot fall
  // out of the top 10.
  std::map<Item, uint64_t> truth;
  for (const Item item : stream) ++truth[item];
  std::vector<std::pair<uint64_t, Item>> ranked;
  for (const auto& entry : truth) ranked.push_back({entry.second, entry.first});
  std::sort(ranked.rbegin(), ranked.rend());
  for (size_t i = 0; i < 3; ++i) {
    const Item elephant = ranked[i].second;
    EXPECT_TRUE(std::any_of(top.begin(), top.end(),
                            [elephant](const HeavyHitter& h) {
                              return h.item == elephant;
                            }))
        << "true elephant " << elephant << " missing from TopK";
  }
}

// HeavyHitters applies the phi cut against items_visible() exactly.
TEST(ViewQuery, HeavyHittersAppliesPhiThresholdExactly) {
  ShardedEngine engine(ServingOptions());
  ASSERT_TRUE(engine.AddSketch(CountMinFactory()).ok());
  const ServingHandle handle = engine.Serving("count_min");
  engine.Run(ZipfStream(kUniverse, 1.3, kLength, kSeed));

  const SnapshotView view = handle.Acquire();
  for (const double phi : {0.001, 0.01, 0.05}) {
    const double threshold = phi * static_cast<double>(view.items_visible());
    EXPECT_EQ(HeavyHitters(view, phi, kUniverse), BruteForce(view, threshold))
        << "phi=" << phi;
  }
  // phi <= 0 degenerates to every positive-estimate candidate.
  EXPECT_EQ(HeavyHitters(view, 0.0, kUniverse), BruteForce(view, 0.0));
}

// Queries on a view with nothing published are empty, never UB.
TEST(ViewQuery, UnpublishedViewsAnswerEmpty) {
  ShardedEngine engine(ServingOptions());
  ASSERT_TRUE(engine.AddSketch(SpaceSavingFactory()).ok());
  const SnapshotView view = engine.Serving("space_saving").Acquire();
  EXPECT_EQ(view.shards_published(), 0u);
  EXPECT_TRUE(TopK(view, 10).empty());
  EXPECT_TRUE(HeavyHitters(view, 0.01).empty());
  const ConsistentViews empty = AcquireAll({});
  EXPECT_TRUE(empty.consistent);
  EXPECT_TRUE(empty.views.empty());
}

// At quiescence AcquireAll must succeed on the first round and agree with
// the run's recorded last-checkpoint markers — under EveryItems all
// sketches on a shard checkpoint at the same item counts, so the cuts
// align across sketches too.
TEST(ViewQuery, AcquireAllAlignsSketchesAtQuiescence) {
  ShardedEngine engine(ServingOptions());
  ASSERT_TRUE(engine.AddSketch(SpaceSavingFactory()).ok());
  ASSERT_TRUE(engine.AddSketch(CountMinFactory()).ok());
  const std::vector<ServingHandle> handles = {engine.Serving("space_saving"),
                                              engine.Serving("count_min")};
  const ShardedRunReport report =
      engine.Run(ZipfStream(kUniverse, 1.3, kLength, kSeed));

  const ConsistentViews acquired = AcquireAll(handles);
  ASSERT_TRUE(acquired.consistent);
  EXPECT_EQ(acquired.attempts, 1);
  ASSERT_EQ(acquired.views.size(), 2u);
  const ShardedSketchReport* sk = report.Find("space_saving");
  ASSERT_NE(sk, nullptr);
  for (size_t s = 0; s < kShards; ++s) {
    const ShardSnapshot* a = acquired.views[0].shard_snapshot(s);
    const ShardSnapshot* b = acquired.views[1].shard_snapshot(s);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->items_at_checkpoint, b->items_at_checkpoint);
    EXPECT_EQ(a->items_at_checkpoint, sk->last_checkpoint_items[s]);
  }
}

// Mid-run, AcquireAll races checkpoint publication. Whenever it reports
// consistent, the cuts must actually align — and the aligned pair is what
// makes a cross-sketch answer coherent (SpaceSaving candidates scored
// against the CountMin view describe the same stream prefix).
TEST(ViewQuery, AcquireAllStaysConsistentDuringIngest) {
  ShardedEngine engine(ServingOptions());
  ASSERT_TRUE(engine.AddSketch(SpaceSavingFactory()).ok());
  ASSERT_TRUE(engine.AddSketch(CountMinFactory()).ok());
  const std::vector<ServingHandle> handles = {engine.Serving("space_saving"),
                                              engine.Serving("count_min")};

  std::atomic<bool> done{false};
  uint64_t consistent_rounds = 0;
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const ConsistentViews acquired = AcquireAll(handles);
      if (!acquired.consistent) continue;
      ++consistent_rounds;
      for (size_t s = 0; s < kShards; ++s) {
        const ShardSnapshot* a = acquired.views[0].shard_snapshot(s);
        const ShardSnapshot* b = acquired.views[1].shard_snapshot(s);
        ASSERT_EQ(a == nullptr, b == nullptr);
        if (a != nullptr) {
          ASSERT_EQ(a->items_at_checkpoint, b->items_at_checkpoint);
        }
      }
      if (acquired.views[0].shards_published() == 0) continue;
      // Cross-sketch query on the aligned pair: candidates from the
      // identity-tracking view, scored against the hash-bucket view.
      const std::vector<HeavyHitter> top = TopK(acquired.views[0], 5);
      for (const HeavyHitter& h : top) {
        ASSERT_GE(acquired.views[1].EstimateFrequency(h.item), 0.0);
      }
    }
  });
  engine.Run(ZipfStream(kUniverse, 1.3, kLength, kSeed));
  done.store(true, std::memory_order_release);
  reader.join();

  // Post-quiescence the aligned acquire is guaranteed; mid-run rounds are
  // scheduling-dependent, so only the final one is asserted.
  EXPECT_TRUE(AcquireAll(handles).consistent);
  (void)consistent_rounds;
}

}  // namespace
}  // namespace fewstate
