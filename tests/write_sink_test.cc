// The WriteSink pipeline: live NVM pricing must agree bitwise with the
// recorded-log replay path on streams the log can hold (they drive one
// costing core), TeeSink must be equivalent to each sink alone, truncated
// replays must say so, and sharded checkpoint wear must be deterministic.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "api/item_source.h"
#include "api/stream_engine.h"
#include "baselines/count_min.h"
#include "baselines/count_sketch.h"
#include "core/full_sample_and_hold.h"
#include "nvm/live_sink.h"
#include "nvm/nvm_adapter.h"
#include "shard/sharded_engine.h"
#include "shard/sketch_factory.h"
#include "state/state_accountant.h"
#include "state/write_log.h"
#include "state/write_sink.h"
#include "stream/generators.h"

namespace fewstate {
namespace {

// Bitwise: exact equality on every field, doubles included (inf == inf).
void ExpectReportsIdentical(const NvmReplayReport& a,
                            const NvmReplayReport& b) {
  EXPECT_EQ(a.writes_replayed, b.writes_replayed);
  EXPECT_EQ(a.reads_replayed, b.reads_replayed);
  EXPECT_EQ(a.max_cell_wear, b.max_cell_wear);
  EXPECT_EQ(a.wear_imbalance, b.wear_imbalance);
  EXPECT_EQ(a.energy_nj, b.energy_nj);
  EXPECT_EQ(a.latency_ns, b.latency_ns);
  EXPECT_EQ(a.projected_stream_replays_to_failure,
            b.projected_stream_replays_to_failure);
  EXPECT_EQ(a.dropped_writes, b.dropped_writes);
}

NvmSpec SmallSpec(NvmSpec::Leveling leveling) {
  NvmSpec spec;
  spec.config.num_cells = 1 << 12;
  spec.config.endurance = 1 << 20;
  spec.leveling = leveling;
  spec.rotate_period = 16;
  spec.hash_seed = 11;
  return spec;
}

Stream TestStream() { return ZipfStream(2000, 1.2, 50000, /*seed=*/97); }

FullSampleAndHoldOptions FshOptions() {
  FullSampleAndHoldOptions options;
  options.universe = 2000;
  options.stream_length_hint = 50000;
  options.p = 2.0;
  options.eps = 0.3;
  options.seed = 12;
  return options;
}

// A sink that records raw events, to pin the accountant->sink contract.
struct RecordingSink : public WriteSink {
  std::vector<WriteRecord> writes;
  uint64_t bulk_reads = 0;
  int flushes = 0;
  int resets = 0;

  void OnWrite(uint64_t epoch, uint64_t cell) override {
    writes.push_back(WriteRecord{epoch, cell});
  }
  void OnBulkReads(uint64_t count) override { bulk_reads += count; }
  void Flush() override { ++flushes; }
  void Reset() override { ++resets; }
};

TEST(WriteSink, AccountantStreamsEveryEventToTheSink) {
  StateAccountant a;
  RecordingSink sink;
  a.set_write_sink(&sink);
  EXPECT_EQ(a.write_sink(), &sink);

  a.BeginUpdate();
  a.RecordWrite(5, 2);  // words: cells 5 and 6, epoch 1
  a.RecordRead(3);
  a.RecordSuppressedWrite();  // not a state change: never reaches the sink
  a.BeginUpdate();
  a.RecordWrite(9);

  ASSERT_EQ(sink.writes.size(), 3u);
  EXPECT_EQ(sink.writes[0].epoch, 1u);
  EXPECT_EQ(sink.writes[0].cell, 5u);
  EXPECT_EQ(sink.writes[1].cell, 6u);
  EXPECT_EQ(sink.writes[2].epoch, 2u);
  EXPECT_EQ(sink.writes[2].cell, 9u);
  EXPECT_EQ(sink.bulk_reads, 3u);

  a.Reset();
  EXPECT_EQ(sink.resets, 1);
}

// The acceptance bar: for every wear policy, the live path's report is
// bitwise-identical to log+replay on a stream the log holds entirely.
TEST(WriteSink, LiveSinkMatchesLogReplayBitwiseForEveryPolicy) {
  const Stream stream = TestStream();
  for (NvmSpec::Leveling leveling :
       {NvmSpec::Leveling::kDirect, NvmSpec::Leveling::kRotating,
        NvmSpec::Leveling::kHashed}) {
    const NvmSpec spec = SmallSpec(leveling);

    WriteLog log(1ULL << 24);
    CountMin logged(4, 512, /*seed=*/7);
    logged.mutable_accountant()->set_write_sink(&log);
    logged.Consume(stream);
    NvmDevice device(spec.config);
    auto policy = spec.MakePolicy();
    const NvmReplayReport replayed =
        ReplayOnNvm(log, logged.accountant(), policy.get(), &device);
    ASSERT_EQ(replayed.dropped_writes, 0u);

    LiveNvmSink live(spec);
    CountMin streamed(4, 512, /*seed=*/7);
    streamed.mutable_accountant()->set_write_sink(&live);
    streamed.Consume(stream);

    ExpectReportsIdentical(live.Report(), replayed);
  }
}

// Same equivalence for a write-frugal sketch, whose traffic is dominated
// by reads and suppressed writes (exercises the bulk-read forwarding).
TEST(WriteSink, LiveSinkMatchesLogReplayForWriteFrugalSketch) {
  const Stream stream = TestStream();
  const NvmSpec spec = SmallSpec(NvmSpec::Leveling::kHashed);

  WriteLog log(1ULL << 24);
  FullSampleAndHold logged(FshOptions());
  logged.mutable_accountant()->set_write_sink(&log);
  logged.Consume(stream);
  NvmDevice device(spec.config);
  auto policy = spec.MakePolicy();
  const NvmReplayReport replayed =
      ReplayOnNvm(log, logged.accountant(), policy.get(), &device);

  LiveNvmSink live(spec);
  FullSampleAndHold streamed(FshOptions());
  streamed.mutable_accountant()->set_write_sink(&live);
  streamed.Consume(stream);

  ExpectReportsIdentical(live.Report(), replayed);
}

// TeeSink composes: a log and a live device fed through one tee behave
// exactly as each would alone.
TEST(WriteSink, TeeSinkIsEquivalentToEachSinkAlone) {
  const Stream stream = TestStream();
  const NvmSpec spec = SmallSpec(NvmSpec::Leveling::kDirect);

  WriteLog solo_log(1ULL << 24);
  CountMin a(4, 512, /*seed=*/3);
  a.mutable_accountant()->set_write_sink(&solo_log);
  a.Consume(stream);

  LiveNvmSink solo_live(spec);
  CountMin b(4, 512, /*seed=*/3);
  b.mutable_accountant()->set_write_sink(&solo_live);
  b.Consume(stream);

  WriteLog teed_log(1ULL << 24);
  LiveNvmSink teed_live(spec);
  TeeSink tee({&teed_log, &teed_live});
  CountMin c(4, 512, /*seed=*/3);
  c.mutable_accountant()->set_write_sink(&tee);
  c.Consume(stream);

  ASSERT_EQ(teed_log.records().size(), solo_log.records().size());
  for (size_t i = 0; i < solo_log.records().size(); ++i) {
    EXPECT_EQ(teed_log.records()[i].epoch, solo_log.records()[i].epoch);
    EXPECT_EQ(teed_log.records()[i].cell, solo_log.records()[i].cell);
  }
  EXPECT_EQ(teed_log.total_appends(), solo_log.total_appends());
  ExpectReportsIdentical(teed_live.Report(), solo_live.Report());
}

// Satellite: a truncated log must say so instead of silently
// under-reporting wear — and the live path must never drop.
TEST(WriteSink, ReplaySurfacesDroppedWritesAndLiveSinkNeverDrops) {
  const Stream stream = TestStream();
  const NvmSpec spec = SmallSpec(NvmSpec::Leveling::kDirect);

  WriteLog tiny_log(/*capacity=*/1000);
  LiveNvmSink live(spec);
  TeeSink tee({&tiny_log, &live});
  CountMin alg(4, 512, /*seed=*/5);
  alg.mutable_accountant()->set_write_sink(&tee);
  alg.Consume(stream);

  ASSERT_GT(tiny_log.dropped(), 0u);
  NvmDevice device(spec.config);
  auto policy = spec.MakePolicy();
  const NvmReplayReport replayed =
      ReplayOnNvm(tiny_log, alg.accountant(), policy.get(), &device);
  EXPECT_TRUE(replayed.truncated());
  EXPECT_EQ(replayed.dropped_writes, tiny_log.dropped());
  EXPECT_EQ(replayed.writes_replayed + replayed.dropped_writes,
            alg.accountant().word_writes());

  const NvmReplayReport exact = live.Report();
  EXPECT_FALSE(exact.truncated());
  EXPECT_EQ(exact.writes_replayed, alg.accountant().word_writes());
  // Truncation under-reports wear; the live device saw everything.
  EXPECT_LT(replayed.max_cell_wear, exact.max_cell_wear);
}

TEST(WriteSink, AccountantResetRenewsTheLiveDevice) {
  const NvmSpec spec = SmallSpec(NvmSpec::Leveling::kDirect);
  LiveNvmSink live(spec);
  StateAccountant a;
  a.set_write_sink(&live);
  a.BeginUpdate();
  a.RecordWrite(3);
  a.RecordRead(2);
  EXPECT_EQ(live.Report().writes_replayed, 1u);
  a.Reset();
  const NvmReplayReport fresh = live.Report();
  EXPECT_EQ(fresh.writes_replayed, 0u);
  EXPECT_EQ(fresh.reads_replayed, 0u);
  EXPECT_EQ(fresh.max_cell_wear, 0u);
}

TEST(StreamEngineNvm, AttachNvmPricesWritesLiveAndReportsDeviceState) {
  const Stream stream = TestStream();
  StreamEngine engine;
  engine.Register("count_min", std::make_unique<CountMin>(4, 512, 7));
  ASSERT_TRUE(engine.AttachNvm("count_min",
                               SmallSpec(NvmSpec::Leveling::kDirect))
                  .ok());
  EXPECT_FALSE(engine.AttachNvm("missing",
                                SmallSpec(NvmSpec::Leveling::kDirect))
                   .ok());
  NvmSpec invalid;
  invalid.config.num_cells = 0;
  EXPECT_FALSE(engine.AttachNvm("count_min", invalid).ok());

  const RunReport report = engine.Run(stream);
  const SketchRunReport* row = report.Find("count_min");
  ASSERT_NE(row, nullptr);
  ASSERT_TRUE(row->has_nvm);
  EXPECT_EQ(row->nvm.writes_replayed, row->word_writes);
  EXPECT_EQ(row->nvm.dropped_writes, 0u);
  EXPECT_GT(row->nvm.max_cell_wear, 0u);
  const LiveNvmSink* sink = engine.NvmSink("count_min");
  ASSERT_NE(sink, nullptr);
  ExpectReportsIdentical(row->nvm, sink->Report());
}

TEST(StreamEngineNvm, EngineDestructionDetachesSinkFromBorrowedSketch) {
  CountMin borrowed(4, 64, 1);
  {
    StreamEngine engine;
    engine.RegisterBorrowed("cm", &borrowed);
    ASSERT_TRUE(
        engine.AttachNvm("cm", SmallSpec(NvmSpec::Leveling::kDirect)).ok());
    engine.Run(ZipfStream(100, 1.2, 1000, 1));
    EXPECT_NE(borrowed.accountant().write_sink(), nullptr);
  }
  // The engine-owned sink died with the engine; the borrowed sketch must
  // not be left writing into freed memory.
  EXPECT_EQ(borrowed.accountant().write_sink(), nullptr);
  borrowed.Update(7);
}

TEST(ShardedNvm, SingleShardLiveDeviceMatchesStreamEngineBitwise) {
  const Stream stream = TestStream();
  const NvmSpec spec = SmallSpec(NvmSpec::Leveling::kRotating);

  StreamEngine reference;
  reference.Register("count_min",
                     std::make_unique<CountMin>(size_t{4}, size_t{512},
                                                uint64_t{7}, false));
  ASSERT_TRUE(reference.AttachNvm("count_min", spec).ok());
  const RunReport expected = reference.Run(stream);

  ShardedEngineOptions options;
  options.shards = 1;
  ShardedEngine sharded(options);
  ASSERT_TRUE(sharded
                  .AddSketch(SketchFactory::Of<CountMin>(
                                 "count_min", size_t{4}, size_t{512},
                                 uint64_t{7}, false),
                             spec)
                  .ok());
  const ShardedRunReport report = sharded.Run(stream);
  const ShardedSketchReport* row = report.Find("count_min");
  ASSERT_NE(row, nullptr);
  ASSERT_TRUE(row->per_shard[0].has_nvm);
  ASSERT_TRUE(row->total.has_nvm);
  ExpectReportsIdentical(row->per_shard[0].nvm,
                         expected.Find("count_min")->nvm);
  ExpectReportsIdentical(row->total.nvm, expected.Find("count_min")->nvm);
}

ShardedRunReport RunCheckpointed(size_t shards, uint64_t every,
                                 uint64_t items) {
  ShardedEngineOptions options;
  options.shards = shards;
  options.batch_items = 1024;
  options.checkpoint_every_items = every;
  options.checkpoint_nvm = SmallSpec(NvmSpec::Leveling::kDirect);
  ShardedEngine engine(options);
  EXPECT_TRUE(engine
                  .AddSketch(SketchFactory::Of<CountMin>(
                                 "count_min", size_t{4}, size_t{512},
                                 uint64_t{7}, false),
                             SmallSpec(NvmSpec::Leveling::kDirect))
                  .ok());
  EXPECT_TRUE(engine
                  .AddSketch(SketchFactory::Of<CountSketch>(
                                 "count_sketch", size_t{4}, size_t{512},
                                 uint64_t{8}),
                             SmallSpec(NvmSpec::Leveling::kHashed))
                  .ok());
  return engine.Run(ZipfSource(5000, 1.2, items, /*seed=*/4242));
}

TEST(ShardedNvm, CheckpointWearIsDeterministicForFixedSeedAndShards) {
  const ShardedRunReport first = RunCheckpointed(2, 10000, 60000);
  const ShardedRunReport second = RunCheckpointed(2, 10000, 60000);
  ASSERT_EQ(first.sketches.size(), second.sketches.size());
  for (size_t i = 0; i < first.sketches.size(); ++i) {
    const ShardedSketchReport& a = first.sketches[i];
    const ShardedSketchReport& b = second.sketches[i];
    EXPECT_GT(a.checkpoints_taken, 0u);
    EXPECT_EQ(a.checkpoints_taken, b.checkpoints_taken);
    EXPECT_EQ(a.checkpoint.updates, b.checkpoint.updates);
    EXPECT_EQ(a.checkpoint.state_changes, b.checkpoint.state_changes);
    EXPECT_EQ(a.checkpoint.word_writes, b.checkpoint.word_writes);
    EXPECT_EQ(a.checkpoint.word_reads, b.checkpoint.word_reads);
    ASSERT_TRUE(a.checkpoint.has_nvm);
    ExpectReportsIdentical(a.checkpoint.nvm, b.checkpoint.nvm);
    ExpectReportsIdentical(a.total.nvm, b.total.nvm);
  }
}

TEST(ShardedNvm, CheckpointCountMatchesThresholdsCrossed) {
  // S == 1: the shard sees all N items, so exactly floor(N / every)
  // thresholds are crossed regardless of batch splits.
  const ShardedRunReport report = RunCheckpointed(1, 10000, 55000);
  for (const ShardedSketchReport& sk : report.sketches) {
    EXPECT_EQ(sk.checkpoints_taken, 5u);
    EXPECT_EQ(sk.checkpoint.updates, 5u);  // one merge epoch per snapshot
    EXPECT_GT(sk.checkpoint.word_writes, 0u);
  }
}

TEST(ShardedNvm, MoreFrequentCheckpointsCostMoreDurabilityWear) {
  const ShardedRunReport sparse = RunCheckpointed(1, 20000, 60000);
  const ShardedRunReport dense = RunCheckpointed(1, 5000, 60000);
  const ShardedSketchReport* s = sparse.Find("count_min");
  const ShardedSketchReport* d = dense.Find("count_min");
  ASSERT_NE(s, nullptr);
  ASSERT_NE(d, nullptr);
  EXPECT_GT(d->checkpoints_taken, s->checkpoints_taken);
  EXPECT_GT(d->checkpoint.word_writes, s->checkpoint.word_writes);
  EXPECT_GT(d->checkpoint.nvm.writes_replayed,
            s->checkpoint.nvm.writes_replayed);
  // Update-path wear is unaffected by how often we snapshot.
  EXPECT_EQ(d->per_shard[0].word_writes, s->per_shard[0].word_writes);
}

}  // namespace
}  // namespace fewstate
